// Tests for the extension features: the fine-grained hybrid ablation
// kernel (SS IV-A straightforward strategy), optimizers and dropout.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fine_grained_hybrid.h"
#include "gnn/optimizers.h"
#include "gnn/trainer.h"
#include "graph/datasets.h"
#include "sparse/convert.h"
#include "sparse/generate.h"
#include "sparse/reference.h"
#include "util/random.h"

namespace hcspmm {
namespace {

TEST(FineGrainedHybridTest, CorrectAtFp32) {
  Pcg32 rng(1);
  CsrMatrix a = GenerateUniformSparse(128, 128, 0.08, &rng);
  DenseMatrix x = GenerateDense(128, 32, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);
  FineGrainedHybridSpmm kernel;
  KernelOptions opts;
  opts.dtype = DataType::kFp32;
  DenseMatrix z;
  KernelProfile prof;
  ASSERT_TRUE(kernel.Run(a, x, Rtx3090(), opts, &z, &prof).ok());
  EXPECT_LT(z.MaxAbsDifference(expected), 1e-4);
  EXPECT_GT(prof.blocks, 0);
}

TEST(FineGrainedHybridTest, RegisteredInKernelRegistry) {
  auto kernel = MakeKernel("hybrid_fine");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->name(), "hybrid_fine");
}

TEST(FineGrainedHybridTest, RowWindowStrategyWinsOnRealGraphs) {
  // SS IV-A: the straightforward per-16x8-block strategy pays merge and
  // locality overheads; HC-SpMM's row-window strategy must beat it.
  for (const char* code : {"PM", "DD", "YS"}) {
    Graph g = LoadDatasetCapped(DatasetByCode(code).ValueOrDie(), 60000);
    CsrMatrix abar = GcnNormalized(g.adjacency);
    DenseMatrix x(abar.cols(), 32, 0.5f);
    DenseMatrix z;
    KernelProfile hc, fine;
    ASSERT_TRUE(MakeKernel("hcspmm")->Run(abar, x, Rtx3090(), KernelOptions{}, &z, &hc).ok());
    ASSERT_TRUE(MakeKernel("hybrid_fine")->Run(abar, x, Rtx3090(), KernelOptions{}, &z, &fine).ok());
    EXPECT_LT(hc.time_ns, fine.time_ns) << code;
  }
}

TEST(FineGrainedHybridTest, MixedWindowsPayMergeTraffic) {
  // A matrix with both dense and sparse 16x8 blocks in the same window
  // must show the merge's extra result traffic vs a pure-sparse one.
  Pcg32 rng(2);
  CsrMatrix mixed = GenerateBlockedMatrix(64, 32, 0.55, &rng);  // dense blocks
  CooMatrix coo = CsrToCoo(mixed);
  // Add a sparse far-off column per row so every window is mixed.
  CsrMatrix base = CooToCsr(coo);
  CooMatrix coo2(64, 512);
  for (const CooEntry& e : coo.entries()) coo2.Add(e.row, e.col, e.value);
  for (int32_t r = 0; r < 64; ++r) coo2.Add(r, 500 - (r % 7), 1.0f);
  CsrMatrix a = CooToCsr(coo2);
  DenseMatrix x(512, 32, 0.5f);
  DenseMatrix z;
  KernelProfile prof;
  ASSERT_TRUE(MakeKernel("hybrid_fine")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &prof).ok());
  // Both core types used somewhere.
  EXPECT_GT(prof.mma_ops, 0);
  EXPECT_GT(prof.fma_ops, 0);
}

TEST(OptimizerTest, SgdMatchesManualUpdate) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kSgd;
  cfg.learning_rate = 0.1;
  Optimizer opt(cfg);
  DenseMatrix w(1, 2, 1.0f);
  opt.AddParameter(&w);
  DenseMatrix g(1, 2, 0.5f);
  opt.Step({&g});
  EXPECT_FLOAT_EQ(w.At(0, 0), 0.95f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.9;
  Optimizer opt(cfg);
  DenseMatrix w(1, 1, 0.0f);
  opt.AddParameter(&w);
  DenseMatrix g(1, 1, 1.0f);
  opt.Step({&g});
  EXPECT_NEAR(w.At(0, 0), -0.1, 1e-6);   // v = 1
  opt.Step({&g});
  EXPECT_NEAR(w.At(0, 0), -0.29, 1e-6);  // v = 1.9
}

TEST(OptimizerTest, AdamStepSizeBoundedByLr) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  cfg.learning_rate = 0.01;
  Optimizer opt(cfg);
  DenseMatrix w(1, 1, 0.0f);
  opt.AddParameter(&w);
  DenseMatrix g(1, 1, 100.0f);  // huge gradient
  opt.Step({&g});
  // Adam normalizes by sqrt(v_hat): first step ~ lr regardless of scale.
  EXPECT_NEAR(w.At(0, 0), -0.01, 1e-4);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * (w - 3)^2 with noisy-free gradients.
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  cfg.learning_rate = 0.1;
  Optimizer opt(cfg);
  DenseMatrix w(1, 1, 0.0f);
  opt.AddParameter(&w);
  for (int i = 0; i < 500; ++i) {
    DenseMatrix g(1, 1, w.At(0, 0) - 3.0f);
    opt.Step({&g});
  }
  EXPECT_NEAR(w.At(0, 0), 3.0, 0.05);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kSgd;
  cfg.learning_rate = 0.1;
  cfg.weight_decay = 0.5;
  Optimizer opt(cfg);
  DenseMatrix w(1, 1, 1.0f);
  opt.AddParameter(&w);
  DenseMatrix g(1, 1, 0.0f);  // zero gradient: only decay acts
  opt.Step({&g});
  EXPECT_NEAR(w.At(0, 0), 0.95, 1e-6);
}

TEST(DropoutTest, ZeroRateIsIdentity) {
  Pcg32 rng(3);
  DenseMatrix a(4, 4, 2.0f);
  DenseMatrix before = a;
  DenseMatrix mask = DropoutForward(&a, 0.0, &rng);
  EXPECT_EQ(a.data(), before.data());
  for (float m : mask.data()) EXPECT_FLOAT_EQ(m, 1.0f);
}

TEST(DropoutTest, DropsApproximatelyRateFraction) {
  Pcg32 rng(4);
  DenseMatrix a(100, 100, 1.0f);
  DenseMatrix mask = DropoutForward(&a, 0.3, &rng);
  int64_t dropped = 0;
  for (float m : mask.data()) dropped += (m == 0.0f);
  EXPECT_NEAR(static_cast<double>(dropped) / mask.data().size(), 0.3, 0.02);
  // Survivors scaled so the expectation is preserved.
  double sum = 0;
  for (float v : a.data()) sum += v;
  EXPECT_NEAR(sum / a.data().size(), 1.0, 0.05);
}

TEST(DropoutTest, BackwardAppliesSameMask) {
  Pcg32 rng(5);
  DenseMatrix act(8, 8, 1.0f);
  DenseMatrix mask = DropoutForward(&act, 0.5, &rng);
  DenseMatrix grad(8, 8, 1.0f);
  DropoutBackward(&grad, mask, 0.5);
  for (size_t i = 0; i < grad.data().size(); ++i) {
    if (mask.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(grad.data()[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(grad.data()[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
}

TEST(GcnOptimizerIntegrationTest, AdamTrainsGcn) {
  Pcg32 rng(31);
  Graph g = LoadDatasetCapped(DatasetByCode("CR").ValueOrDie(), 10000);
  g.num_classes = 4;
  for (int32_t v = 0; v < g.num_vertices; ++v) g.labels[v] = (v / 20) % 4;
  AttachSyntheticFeatures(&g, &rng);
  GnnConfig cfg;
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 0.01;
  auto stats = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", cfg, Rtx3090(), 30);
  EXPECT_LT(stats.epochs.back().loss, stats.epochs.front().loss * 0.9);
}

TEST(GcnOptimizerIntegrationTest, DropoutKeepsModelTrainable) {
  Pcg32 rng(32);
  Graph g = LoadDatasetCapped(DatasetByCode("CR").ValueOrDie(), 10000);
  g.num_classes = 4;
  for (int32_t v = 0; v < g.num_vertices; ++v) g.labels[v] = (v / 20) % 4;
  AttachSyntheticFeatures(&g, &rng);
  GnnConfig cfg;
  cfg.dropout = 0.3;
  cfg.learning_rate = 0.3;
  auto stats = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", cfg, Rtx3090(), 40);
  EXPECT_LT(stats.epochs.back().loss, stats.epochs.front().loss);
}

}  // namespace
}  // namespace hcspmm
