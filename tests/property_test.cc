// Cross-cutting property tests: invariants that must hold for every kernel,
// data type, device, and window height — swept with parameterized gtest.
#include <gtest/gtest.h>

#include "core/hybrid_spmm.h"
#include "gpusim/scheduler.h"
#include "graph/generators.h"
#include "sparse/convert.h"
#include "sparse/generate.h"
#include "sparse/reference.h"
#include "util/random.h"

namespace hcspmm {
namespace {

// ---- Property: every kernel, on every device, at every dtype, produces a
// result within the dtype's rounding tolerance of the reference. ----

struct SweepCase {
  std::string kernel;
  std::string device;
  DataType dtype;
};

class KernelSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweepTest, CorrectWithinDtypeTolerance) {
  const SweepCase& tc = GetParam();
  Pcg32 rng(2024);
  CsrMatrix a = GenerateUniformSparse(96, 96, 0.08, &rng);
  DenseMatrix x = GenerateDense(96, 24, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);

  auto kernel = MakeKernel(tc.kernel);
  ASSERT_NE(kernel, nullptr);
  KernelOptions opts;
  opts.dtype = tc.dtype;
  DenseMatrix z;
  KernelProfile prof;
  ASSERT_TRUE(kernel->Run(a, x, DeviceByName(tc.device), opts, &z, &prof).ok());
  // FP16/BF16 round to ~2-3 decimal digits; TF32 to ~3; FP32 exact.
  const double tol = (tc.dtype == DataType::kFp32)   ? 1e-4
                     : (tc.dtype == DataType::kTf32) ? 5e-2
                                                     : 2e-1;
  EXPECT_LT(z.MaxAbsDifference(expected), tol);
  EXPECT_GT(prof.time_ns, 0.0);
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (const std::string& k : KernelNames()) {
    for (const char* dev : {"3090", "4090", "A100"}) {
      for (DataType t : {DataType::kFp32, DataType::kTf32, DataType::kFp16,
                         DataType::kBf16}) {
        cases.push_back({k, dev, t});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsDevicesDtypes, KernelSweepTest, ::testing::ValuesIn(MakeSweep()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.kernel + "_" + info.param.device + "_" +
             DataTypeName(info.param.dtype);
    });

// ---- Property: simulated time scales (weakly) monotonically with work. ----

class WorkScalingTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkScalingTest, MoreNonzerosNeverFaster) {
  Pcg32 rng(7);
  CsrMatrix sparse = GenerateUniformSparse(256, 256, 0.02, &rng);
  CsrMatrix dense = GenerateUniformSparse(256, 256, 0.10, &rng);
  DenseMatrix x = GenerateDense(256, 32, &rng);
  auto kernel = MakeKernel(GetParam());
  DenseMatrix z;
  KernelProfile p_sparse, p_dense;
  ASSERT_TRUE(kernel->Run(sparse, x, Rtx3090(), KernelOptions{}, &z, &p_sparse).ok());
  ASSERT_TRUE(kernel->Run(dense, x, Rtx3090(), KernelOptions{}, &z, &p_dense).ok());
  EXPECT_GE(p_dense.time_ns, p_sparse.time_ns) << GetParam();
}

TEST_P(WorkScalingTest, WiderDenseMatrixNeverFaster) {
  Pcg32 rng(8);
  CsrMatrix a = GenerateUniformSparse(128, 128, 0.06, &rng);
  DenseMatrix x16 = GenerateDense(128, 16, &rng);
  DenseMatrix x96 = GenerateDense(128, 96, &rng);
  auto kernel = MakeKernel(GetParam());
  DenseMatrix z;
  KernelProfile p16, p96;
  ASSERT_TRUE(kernel->Run(a, x16, Rtx3090(), KernelOptions{}, &z, &p16).ok());
  ASSERT_TRUE(kernel->Run(a, x96, Rtx3090(), KernelOptions{}, &z, &p96).ok());
  EXPECT_GE(p96.time_ns, p16.time_ns) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkScalingTest,
                         ::testing::ValuesIn(std::vector<const char*>{
                             "cuda_basic", "cuda_opt", "tensor_basic",
                             "tensor_opt", "hcspmm", "cusparse", "sputnik",
                             "gespmm", "tcgnn", "dtcspmm"}));

// ---- Property: hybrid result is invariant to row permutations of A (up to
// matching output permutation), because routing is per-window. ----

TEST(PermutationInvarianceTest, RowPermutationPermutesResult) {
  Pcg32 rng(9);
  Graph g = MoleculeUnion(160, 700, 20, 8, &rng);
  CsrMatrix a = g.adjacency;
  DenseMatrix x = GenerateDense(a.cols(), 16, &rng);

  std::vector<int32_t> perm(a.rows());
  for (int32_t i = 0; i < a.rows(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  CsrMatrix pa = PermuteSymmetric(a, perm);
  // Permute X rows the same way so pa * px == perm(a * x) row-wise.
  DenseMatrix px(x.rows(), x.cols());
  for (int32_t r = 0; r < x.rows(); ++r) {
    for (int32_t c = 0; c < x.cols(); ++c) px.At(perm[r], c) = x.At(r, c);
  }

  HcSpmm kernel;
  KernelOptions opts;
  opts.dtype = DataType::kFp32;
  DenseMatrix z, pz;
  KernelProfile p1, p2;
  ASSERT_TRUE(kernel.Run(a, x, Rtx3090(), opts, &z, &p1).ok());
  ASSERT_TRUE(kernel.Run(pa, px, Rtx3090(), opts, &pz, &p2).ok());
  for (int32_t r = 0; r < a.rows(); ++r) {
    for (int32_t c = 0; c < x.cols(); ++c) {
      EXPECT_NEAR(pz.At(perm[r], c), z.At(r, c), 1e-4);
    }
  }
}

// ---- Property: scheduler makespan bounds. ----

class SchedulerPropertyTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(SchedulerPropertyTest, MakespanBetweenLowerAndSerialBound) {
  Pcg32 rng(100 + GetParam());
  std::vector<double> blocks;
  double total = 0.0, max_block = 0.0;
  for (int i = 0; i < GetParam(); ++i) {
    double c = rng.NextDouble(1.0, 1000.0);
    blocks.push_back(c);
    total += c;
    max_block = std::max(max_block, c);
  }
  const int32_t sms = 82;
  const double makespan = ScheduleBlocks(blocks, sms);
  EXPECT_GE(makespan + 1e-9, total / sms);                 // work lower bound
  EXPECT_GE(makespan + 1e-9, max_block / kMaxBlockOverlap);  // latency bound
  EXPECT_LE(makespan, total + 1e-9);                       // serial upper bound
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchedulerPropertyTest,
                         ::testing::Values(1, 5, 82, 100, 1000, 5000));

// ---- Property: preprocessing plan is deterministic and stable. ----

TEST(PlanDeterminismTest, SameInputsSamePlan) {
  Pcg32 rng(11);
  CsrMatrix a = GenerateUniformSparse(200, 200, 0.05, &rng);
  auto p1 = Preprocess(a, Rtx3090(), DefaultSelectorModel());
  auto p2 = Preprocess(a, Rtx3090(), DefaultSelectorModel());
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1.ValueOrDie().windows_cuda, p2.ValueOrDie().windows_cuda);
  EXPECT_EQ(p1.ValueOrDie().windows_tensor, p2.ValueOrDie().windows_tensor);
  for (size_t i = 0; i < p1.ValueOrDie().assignment.size(); ++i) {
    EXPECT_EQ(p1.ValueOrDie().assignment[i], p2.ValueOrDie().assignment[i]);
  }
}

// ---- Property: window heights other than 16 still cover and compute. ----

class WindowHeightTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(WindowHeightTest, PartitionCoversAndSums) {
  Pcg32 rng(12);
  CsrMatrix a = GenerateUniformSparse(101, 77, 0.08, &rng);
  WindowedCsr w = BuildWindows(a, GetParam());
  EXPECT_EQ(w.TotalNnz(), a.nnz());
  int32_t covered = 0;
  for (const RowWindow& win : w.windows) covered += win.num_rows;
  EXPECT_EQ(covered, a.rows());
}

INSTANTIATE_TEST_SUITE_P(Heights, WindowHeightTest, ::testing::Values(1, 4, 8, 16, 32, 128));

// ---- Property: Tensor-core cost is monotone in the column-tile count. ----

TEST(CostMonotonicityTest, TensorCostMonotoneInColumns) {
  const DeviceSpec dev = Rtx3090();
  double prev = 0.0;
  for (int32_t cols = 8; cols <= 256; cols *= 2) {
    WindowShape w;
    w.rows = 16;
    w.dim = 32;
    w.nnz = 64;
    w.unique_cols = cols;
    const double c = TensorWindowCost(w, TensorPathTuning{}, dev, DataType::kTf32)
                         .BlockCycles();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(CostMonotonicityTest, CudaCostMonotoneInNnz) {
  const DeviceSpec dev = Rtx3090();
  double prev = 0.0;
  for (int64_t nnz = 16; nnz <= 4096; nnz *= 4) {
    WindowShape w;
    w.rows = 16;
    w.dim = 32;
    w.nnz = nnz;
    w.unique_cols = 32;
    const double c =
        CudaWindowCost(w, CudaPathTuning{}, dev, DataType::kTf32).BlockCycles();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace hcspmm
