#include <gtest/gtest.h>

#include <set>

#include "kernels/cuda_basic.h"
#include "kernels/cuda_optimized.h"
#include "kernels/spmm_kernel.h"
#include "kernels/tensor_basic.h"
#include "kernels/tensor_optimized.h"
#include "sparse/convert.h"
#include "sparse/generate.h"
#include "sparse/reference.h"
#include "util/random.h"

namespace hcspmm {
namespace {

struct KernelCase {
  const char* kernel;
  int32_t rows;
  int32_t cols;
  double density;
  int32_t dim;
};

class KernelCorrectnessTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelCorrectnessTest, MatchesReferenceAtFp32) {
  const KernelCase& tc = GetParam();
  Pcg32 rng(1234 + tc.rows + tc.dim);
  CsrMatrix a = GenerateUniformSparse(tc.rows, tc.cols, tc.density, &rng);
  DenseMatrix x = GenerateDense(tc.cols, tc.dim, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);

  auto kernel = MakeKernel(tc.kernel);
  ASSERT_NE(kernel, nullptr);
  KernelOptions opts;
  opts.dtype = DataType::kFp32;  // disable rounding for bit-exact check
  DenseMatrix z;
  KernelProfile prof;
  ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), opts, &z, &prof).ok());
  EXPECT_LT(z.MaxAbsDifference(expected), 1e-4)
      << tc.kernel << " deviates from reference";
  EXPECT_GT(prof.time_ns, 0.0);
  EXPECT_GT(prof.blocks, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllShapes, KernelCorrectnessTest,
    ::testing::ValuesIn(std::vector<KernelCase>{
        // Every kernel on a small irregular shape.
        {"cuda_basic", 50, 60, 0.10, 32},
        {"cuda_opt", 50, 60, 0.10, 32},
        {"tensor_basic", 50, 60, 0.10, 32},
        {"tensor_opt", 50, 60, 0.10, 32},
        {"hcspmm", 50, 60, 0.10, 32},
        {"cusparse", 50, 60, 0.10, 32},
        {"sputnik", 50, 60, 0.10, 32},
        {"gespmm", 50, 60, 0.10, 32},
        {"tcgnn", 50, 60, 0.10, 32},
        {"dtcspmm", 50, 60, 0.10, 32},
        // Unaligned dense dimensions (the Generalization case).
        {"cuda_opt", 64, 64, 0.08, 47},
        {"hcspmm", 64, 64, 0.08, 47},
        {"tensor_opt", 64, 64, 0.08, 47},
        {"hcspmm", 33, 70, 0.12, 89},
        // Tall/wide and dense-ish.
        {"hcspmm", 200, 40, 0.05, 16},
        {"hcspmm", 16, 300, 0.02, 96},
        {"hcspmm", 128, 128, 0.40, 32},
    }),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return std::string(info.param.kernel) + "_" +
             std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "d" +
             std::to_string(info.param.dim) + "_" + std::to_string(info.index);
    });

TEST(KernelTest, ShapeMismatchRejected) {
  Pcg32 rng(1);
  CsrMatrix a = GenerateUniformSparse(10, 12, 0.2, &rng);
  DenseMatrix x(13, 8);  // wrong inner dim
  for (const std::string& name : KernelNames()) {
    auto kernel = MakeKernel(name);
    DenseMatrix z;
    KernelProfile prof;
    Status st = kernel->Run(a, x, Rtx3090(), KernelOptions{}, &z, &prof);
    EXPECT_FALSE(st.ok()) << name << " accepted mismatched shapes";
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST(KernelTest, RegistryKnowsAllKernels) {
  for (const std::string& name : KernelNames()) {
    auto kernel = MakeKernel(name);
    ASSERT_NE(kernel, nullptr) << name;
    EXPECT_EQ(kernel->name(), name);
  }
  EXPECT_EQ(MakeKernel("no_such_kernel"), nullptr);
}

TEST(KernelTest, RegisteredKernelNamesMatchesRegistry) {
  const std::vector<std::string>& names = RegisteredKernelNames();
  EXPECT_FALSE(names.empty());
  EXPECT_EQ(names, KernelNames());
  for (const std::string& name : names) {
    EXPECT_NE(MakeKernel(name), nullptr) << name;
  }
  // Stable, duplicate-free listing (error messages depend on it).
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(KernelTest, EmptyMatrixProducesZeros) {
  CooMatrix coo(32, 32);
  CsrMatrix a = CooToCsr(coo);
  Pcg32 rng(2);
  DenseMatrix x = GenerateDense(32, 16, &rng);
  for (const std::string& name : KernelNames()) {
    auto kernel = MakeKernel(name);
    DenseMatrix z;
    KernelProfile prof;
    ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), KernelOptions{}, &z, &prof).ok()) << name;
    for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(KernelTest, MatrixWithEmptyRowsAndDenseRows) {
  // Rows 0..15 empty, row 16 fully dense, rest sparse.
  CooMatrix coo(48, 48);
  for (int c = 0; c < 48; ++c) coo.Add(16, c, 1.0f);
  coo.Add(40, 3, 2.0f);
  CsrMatrix a = CooToCsr(coo);
  Pcg32 rng(3);
  DenseMatrix x = GenerateDense(48, 24, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);
  KernelOptions opts;
  opts.dtype = DataType::kFp32;
  for (const std::string& name : KernelNames()) {
    auto kernel = MakeKernel(name);
    DenseMatrix z;
    KernelProfile prof;
    ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), opts, &z, &prof).ok());
    EXPECT_LT(z.MaxAbsDifference(expected), 1e-4) << name;
  }
}

TEST(KernelTest, Tf32RoundingIsCloseButNotExact) {
  Pcg32 rng(4);
  CsrMatrix a = GenerateUniformSparse(64, 64, 0.15, &rng);
  DenseMatrix x = GenerateDense(64, 32, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);
  auto kernel = MakeKernel("tensor_opt");
  KernelOptions opts;
  opts.dtype = DataType::kTf32;
  DenseMatrix z;
  KernelProfile prof;
  ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), opts, &z, &prof).ok());
  // Within TF32 tolerance but typically not bit-exact.
  EXPECT_LT(z.MaxAbsDifference(expected), 5e-2);
}

TEST(KernelTest, Fp16LessAccurateThanTf32) {
  Pcg32 rng(5);
  CsrMatrix a = GenerateUniformSparse(64, 64, 0.2, &rng);
  DenseMatrix x = GenerateDense(64, 32, &rng);
  DenseMatrix expected = ReferenceSpmm(a, x);
  auto kernel = MakeKernel("tensor_opt");
  DenseMatrix z_tf32, z_bf16;
  KernelProfile p;
  KernelOptions o1, o2;
  o1.dtype = DataType::kTf32;
  o2.dtype = DataType::kBf16;
  ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), o1, &z_tf32, &p).ok());
  ASSERT_TRUE(kernel->Run(a, x, Rtx3090(), o2, &z_bf16, &p).ok());
  EXPECT_LT(z_tf32.MaxAbsDifference(expected), z_bf16.MaxAbsDifference(expected));
}

TEST(KernelProfileTest, CudaKernelIsComputeBoundTensorIsMemoryBound) {
  Pcg32 rng(6);
  CsrMatrix a = GenerateUniformSparse(160, 160, 0.10, &rng);
  DenseMatrix x = GenerateDense(160, 32, &rng);
  DenseMatrix z;
  KernelProfile cuda_prof, tensor_prof;
  ASSERT_TRUE(MakeKernel("cuda_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &cuda_prof).ok());
  ASSERT_TRUE(MakeKernel("tensor_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &tensor_prof).ok());
  EXPECT_LT(cuda_prof.CudaMemToCompute(), 1.0);    // Table I m/c(C) < 1
  EXPECT_GT(tensor_prof.TensorMemToCompute(), 1.0);  // Table I m/c(T) > 1
}

TEST(KernelProfileTest, OptimizedCudaFasterThanBasic) {
  Pcg32 rng(7);
  CsrMatrix a = GenerateUniformSparse(320, 320, 0.05, &rng);
  DenseMatrix x = GenerateDense(320, 47, &rng);  // unaligned dim
  DenseMatrix z;
  KernelProfile basic, opt;
  ASSERT_TRUE(MakeKernel("cuda_basic")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &basic).ok());
  ASSERT_TRUE(MakeKernel("cuda_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &opt).ok());
  EXPECT_LT(opt.time_ns, basic.time_ns);
}

TEST(KernelProfileTest, OptimizedTensorFasterThanBasic) {
  Pcg32 rng(8);
  CsrMatrix a = GenerateUniformSparse(320, 320, 0.08, &rng);
  DenseMatrix x = GenerateDense(320, 32, &rng);
  DenseMatrix z;
  KernelProfile basic, opt;
  ASSERT_TRUE(MakeKernel("tensor_basic")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &basic).ok());
  ASSERT_TRUE(MakeKernel("tensor_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &opt).ok());
  EXPECT_LT(opt.time_ns, basic.time_ns);
  EXPECT_GT(basic.bank_conflicts, 0);
  EXPECT_EQ(opt.bank_conflicts, 0);
}

TEST(KernelProfileTest, NullProfileSkipsMetering) {
  Pcg32 rng(9);
  CsrMatrix a = GenerateUniformSparse(32, 32, 0.1, &rng);
  DenseMatrix x = GenerateDense(32, 16, &rng);
  DenseMatrix z;
  EXPECT_TRUE(MakeKernel("cuda_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, nullptr).ok());
  EXPECT_EQ(z.rows(), 32);
}

TEST(KernelProfileTest, ProfilingDoesNotChangeNumericOutput) {
  // Metering is a pure observer: cuda_opt's windows exist only for cost
  // accounting, so running with a profile, without one, or with prebuilt
  // windows must yield bitwise-identical products.
  Pcg32 rng(19);
  CsrMatrix a = GenerateUniformSparse(90, 70, 0.08, &rng);
  DenseMatrix x = GenerateDense(70, 24, &rng);
  CudaOptimizedSpmm kernel;
  KernelOptions opts;
  opts.dtype = DataType::kFp32;

  DenseMatrix z_plain, z_profiled, z_windows;
  KernelProfile prof, prof_windows;
  ASSERT_TRUE(kernel.Run(a, x, Rtx3090(), opts, &z_plain, nullptr).ok());
  ASSERT_TRUE(kernel.Run(a, x, Rtx3090(), opts, &z_profiled, &prof).ok());
  const WindowedCsr windows = BuildWindows(a);
  ASSERT_TRUE(kernel
                  .RunWithWindows(windows, a, x, Rtx3090(), opts, &z_windows,
                                  &prof_windows)
                  .ok());
  EXPECT_EQ(z_plain.MaxAbsDifference(z_profiled), 0.0);
  EXPECT_EQ(z_plain.MaxAbsDifference(z_windows), 0.0);
  // Reused windows meter exactly like freshly built ones.
  EXPECT_EQ(prof.time_ns, prof_windows.time_ns);
  EXPECT_EQ(prof.blocks, prof_windows.blocks);
  EXPECT_GT(prof.time_ns, 0.0);
}

class SparsitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweepTest, DenserMatricesFavorTensorCores) {
  // Reproduces the Fig. 1(a) trend at kernel granularity: relative Tensor
  // advantage must grow monotonically as density rises.
  const double sparsity = GetParam();
  Pcg32 rng(42);
  CsrMatrix a = GenerateBlockedMatrix(256, 128, sparsity, &rng);
  DenseMatrix x = GenerateDense(128, 32, &rng);
  DenseMatrix z;
  KernelProfile cuda, tensor;
  ASSERT_TRUE(MakeKernel("cuda_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &cuda).ok());
  ASSERT_TRUE(MakeKernel("tensor_opt")->Run(a, x, Rtx3090(), KernelOptions{}, &z, &tensor).ok());
  if (sparsity <= 0.75) {
    EXPECT_LT(tensor.time_ns, cuda.time_ns) << "dense case should favor Tensor";
  }
  if (sparsity >= 0.93) {
    EXPECT_LT(cuda.time_ns, tensor.time_ns) << "sparse case should favor CUDA";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparsitySweepTest,
                         ::testing::Values(0.60, 0.70, 0.75, 0.93, 0.95));

}  // namespace
}  // namespace hcspmm
