// Tests for dynamic graph updates (src/stream/ + the streaming surfaces of
// Session / ShardedSession / SessionPool / Server): DeltaBatch validation
// and hashing, ApplyDeltasToCsr merge semantics, FoldFingerprint ordering,
// PatchPlan structural equality with a cold Preprocess, PackedCsr::PatchRows
// byte-identity with a full re-encode, Session::ApplyDeltas bit-identity
// against cold rebuilds across SIMD levels / thread counts / packed
// indices, the version-pinning race (an in-flight multiply finishes on the
// snapshot it was submitted against), a randomized 500-delta soak with
// periodic from-scratch comparison, sharded delta routing + rebalancing,
// and the serving layer's streaming admission / unregister refusals.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/core_selector.h"
#include "core/preprocess.h"
#include "exec/plan_cache.h"
#include "runtime/runtime.h"
#include "serve/server.h"
#include "serve/session_pool.h"
#include "shard/sharded_session.h"
#include "sparse/generate.h"
#include "sparse/packed_csr.h"
#include "sparse/reference.h"
#include "stream/delta.h"
#include "stream/plan_patch.h"
#include "util/cpu_features.h"
#include "util/random.h"

namespace hcspmm {
namespace {

CsrMatrix StreamMatrix(uint64_t seed, int32_t rows = 160, double density = 0.05) {
  Pcg32 rng(seed);
  return GenerateUniformSparse(rows, rows, density, &rng);
}

SessionOptions Fp32(int threads = 1) {
  return SessionOptions().set_dtype(DataType::kFp32).set_num_threads(threads);
}

bool BitIdentical(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

using EdgeMap = std::map<std::pair<int32_t, int32_t>, float>;

EdgeMap ToEdgeMap(const CsrMatrix& m) {
  EdgeMap map;
  for (int32_t r = 0; r < m.rows(); ++r) {
    for (int64_t e = m.RowBegin(r); e < m.RowBegin(r) + m.RowNnz(r); ++e) {
      map[{r, m.col_ind()[e]}] = m.val()[e];
    }
  }
  return map;
}

// Independent reconstruction path: the soak compares the streamed session
// against a CSR built from this map, never against ApplyDeltasToCsr output.
CsrMatrix FromEdgeMap(const EdgeMap& map, int32_t rows, int32_t cols) {
  std::vector<int64_t> row_ptr(rows + 1, 0);
  std::vector<int32_t> col_ind;
  std::vector<float> val;
  for (const auto& [key, v] : map) row_ptr[key.first + 1]++;
  for (int32_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];
  for (const auto& [key, v] : map) {  // std::map iterates (row, col)-sorted
    col_ind.push_back(key.second);
    val.push_back(v);
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_ind),
                   std::move(val));
}

void ApplyToMap(EdgeMap* map, const DeltaBatch& batch) {
  for (const EdgeDelta& e : batch.upserts()) (*map)[{e.row, e.col}] = e.val;
  for (const EdgeDelta& e : batch.deletes()) map->erase({e.row, e.col});
}

// Random batch against the current edge map: mixed inserts/updates plus
// deletes of edges that exist right now, all keys distinct.
DeltaBatch RandomBatch(const EdgeMap& current, int32_t rows, int32_t cols,
                       int size, Pcg32* rng) {
  std::map<std::pair<int32_t, int32_t>, int> used;
  std::vector<EdgeDelta> upserts;
  std::vector<EdgeDelta> deletes;
  while (static_cast<int>(upserts.size() + deletes.size()) < size) {
    const bool want_delete =
        !current.empty() &&
        (upserts.size() + deletes.size()) % 4 == 0;
    if (want_delete) {
      auto it = current.begin();
      std::advance(it, rng->NextBounded(static_cast<uint32_t>(current.size())));
      if (!used.emplace(it->first, 1).second) continue;
      deletes.push_back({it->first.first, it->first.second, 0.0f});
    } else {
      const int32_t r = static_cast<int32_t>(rng->NextBounded(rows));
      const int32_t c = static_cast<int32_t>(rng->NextBounded(cols));
      if (!used.emplace(std::make_pair(r, c), 1).second) continue;
      upserts.push_back({r, c, rng->NextDouble(0.25, 1.25) > 0.75 ? 0.5f
                         : static_cast<float>(rng->NextDouble(0.1, 2.0))});
    }
  }
  auto batch = DeltaBatch::Make(std::move(upserts), std::move(deletes));
  EXPECT_TRUE(batch.ok()) << batch.status().message();
  return std::move(batch.ValueOrDie());
}

// ---------------------------------------------------------------------------
// DeltaBatch

TEST(DeltaBatchTest, MakeSortsAndRejectsConflicts) {
  // Unsorted caller order is fine; Make canonicalizes.
  auto ok = DeltaBatch::Make({{5, 3, 1.0f}, {1, 9, 2.0f}, {1, 2, 3.0f}},
                             {{4, 4, 0.0f}});
  ASSERT_TRUE(ok.ok());
  const DeltaBatch& b = ok.ValueOrDie();
  ASSERT_EQ(b.upserts().size(), 3u);
  EXPECT_EQ(b.upserts()[0].row, 1);
  EXPECT_EQ(b.upserts()[0].col, 2);
  EXPECT_EQ(b.upserts()[2].row, 5);
  EXPECT_EQ(b.size(), 4);
  EXPECT_FALSE(b.empty());

  // Duplicate key within a list.
  EXPECT_FALSE(DeltaBatch::Make({{1, 2, 1.0f}, {1, 2, 2.0f}}, {}).ok());
  EXPECT_FALSE(DeltaBatch::Make({}, {{3, 3, 0.0f}, {3, 3, 0.0f}}).ok());
  // The same key upserted and deleted is ambiguous.
  EXPECT_FALSE(DeltaBatch::Make({{1, 2, 1.0f}}, {{1, 2, 0.0f}}).ok());
}

TEST(DeltaBatchTest, HashIsCanonicalAndPayloadSensitive) {
  auto a = DeltaBatch::Make({{5, 3, 1.0f}, {1, 9, 2.0f}}, {{4, 4, 0.0f}});
  auto b = DeltaBatch::Make({{1, 9, 2.0f}, {5, 3, 1.0f}}, {{4, 4, 0.0f}});
  ASSERT_TRUE(a.ok() && b.ok());
  // Same logical batch, different caller order => same hash.
  EXPECT_EQ(a.ValueOrDie().Hash(), b.ValueOrDie().Hash());

  // Changing a value, a key, or moving a key between lists changes the hash.
  auto value_changed = DeltaBatch::Make({{5, 3, 1.5f}, {1, 9, 2.0f}}, {{4, 4, 0.0f}});
  auto key_changed = DeltaBatch::Make({{5, 4, 1.0f}, {1, 9, 2.0f}}, {{4, 4, 0.0f}});
  auto list_changed = DeltaBatch::Make({{5, 3, 1.0f}, {1, 9, 2.0f}, {4, 4, 0.0f}}, {});
  EXPECT_NE(a.ValueOrDie().Hash(), value_changed.ValueOrDie().Hash());
  EXPECT_NE(a.ValueOrDie().Hash(), key_changed.ValueOrDie().Hash());
  EXPECT_NE(a.ValueOrDie().Hash(), list_changed.ValueOrDie().Hash());
}

TEST(DeltaBatchTest, BoundsDirtyRowsAndSlice) {
  auto batch = DeltaBatch::Make({{5, 3, 1.0f}, {1, 9, 2.0f}, {5, 7, 1.0f}},
                                {{8, 0, 0.0f}})
                   .ValueOrDie();
  EXPECT_TRUE(batch.CheckBounds(10, 10).ok());
  EXPECT_FALSE(batch.CheckBounds(10, 9).ok());  // col 9 out of range
  EXPECT_FALSE(batch.CheckBounds(8, 10).ok());  // row 8 out of range

  EXPECT_EQ(batch.DirtyRows(), (std::vector<int32_t>{1, 5, 8}));

  // Slice filters and rebases rows; columns stay in the full space.
  const DeltaBatch mid = batch.Slice(4, 8);
  ASSERT_EQ(mid.upserts().size(), 2u);
  EXPECT_EQ(mid.upserts()[0].row, 1);  // was row 5
  EXPECT_EQ(mid.upserts()[0].col, 3);
  EXPECT_TRUE(mid.deletes().empty());
  const DeltaBatch tail = batch.Slice(8, 10);
  EXPECT_TRUE(tail.upserts().empty());
  ASSERT_EQ(tail.deletes().size(), 1u);
  EXPECT_EQ(tail.deletes()[0].row, 0);  // was row 8
}

// ---------------------------------------------------------------------------
// ApplyDeltasToCsr + FoldFingerprint

TEST(ApplyDeltasTest, InsertUpdateDeleteAgainstEdgeMap) {
  const CsrMatrix base = StreamMatrix(3);
  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(17);
  const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 40, &rng);

  DeltaApplyStats stats;
  auto patched = ApplyDeltasToCsr(base, batch, &stats);
  ASSERT_TRUE(patched.ok()) << patched.status().message();
  ApplyToMap(&map, batch);
  const CsrMatrix expect = FromEdgeMap(map, base.rows(), base.cols());

  const CsrMatrix& got = patched.ValueOrDie();
  ASSERT_EQ(got.nnz(), expect.nnz());
  EXPECT_EQ(got.row_ptr(), expect.row_ptr());
  EXPECT_EQ(got.col_ind(), expect.col_ind());
  EXPECT_EQ(got.val(), expect.val());
  EXPECT_TRUE(got.Validate());

  EXPECT_EQ(stats.deleted, static_cast<int64_t>(batch.deletes().size()));
  EXPECT_EQ(stats.inserted + stats.updated,
            static_cast<int64_t>(batch.upserts().size()));
  EXPECT_EQ(got.nnz(), base.nnz() + stats.inserted - stats.deleted);
}

TEST(ApplyDeltasTest, DeletingAbsentEdgeFails) {
  const CsrMatrix base = StreamMatrix(5);
  // Find a hole: (0, c) not present in row 0.
  EdgeMap map = ToEdgeMap(base);
  int32_t hole = -1;
  for (int32_t c = 0; c < base.cols(); ++c) {
    if (map.find({0, c}) == map.end()) {
      hole = c;
      break;
    }
  }
  ASSERT_GE(hole, 0);
  const DeltaBatch batch =
      DeltaBatch::Make({}, {{0, hole, 0.0f}}).ValueOrDie();
  EXPECT_EQ(ApplyDeltasToCsr(base, batch).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ApplyDeltasTest, FoldFingerprintIsOrderSensitiveAndNonTrivial) {
  const uint64_t fp = 0x1234567890abcdefULL;
  const uint64_t h1 = 11, h2 = 22;
  EXPECT_NE(FoldFingerprint(fp, h1), fp);
  EXPECT_NE(FoldFingerprint(fp, h1), h1);
  // Batches do not commute, so neither does the fold.
  EXPECT_NE(FoldFingerprint(FoldFingerprint(fp, h1), h2),
            FoldFingerprint(FoldFingerprint(fp, h2), h1));
  // Distinct bases stay distinct under the same batch.
  EXPECT_NE(FoldFingerprint(fp, h1), FoldFingerprint(fp + 1, h1));
}

// ---------------------------------------------------------------------------
// PatchPlan + PackedCsr::PatchRows

TEST(PlanPatchTest, PatchedPlanStructurallyEqualsColdPlan) {
  for (const bool packed : {false, true}) {
    SCOPED_TRACE(packed ? "packed" : "plain");
    const CsrMatrix base = StreamMatrix(7, 200, 0.06);
    EdgeMap map = ToEdgeMap(base);
    Pcg32 rng(29);
    const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 30, &rng);

    const DeviceSpec dev = Rtx3090();
    const SelectorModel selector = DefaultSelectorModelFor(dev.name);
    auto base_plan = Preprocess(base, dev, selector, kRowWindowHeight, packed);
    ASSERT_TRUE(base_plan.ok());
    auto patched_csr = ApplyDeltasToCsr(base, batch);
    ASSERT_TRUE(patched_csr.ok());
    const CsrMatrix& patched = patched_csr.ValueOrDie();

    auto patch =
        PatchPlan(base_plan.ValueOrDie(), patched, batch.DirtyRows(), dev, selector);
    ASSERT_TRUE(patch.ok()) << patch.status().message();
    auto cold = Preprocess(patched, dev, selector, kRowWindowHeight, packed);
    ASSERT_TRUE(cold.ok());

    const HybridPlan& p = patch.ValueOrDie().plan;
    const HybridPlan& c = cold.ValueOrDie();
    ASSERT_EQ(p.windows.windows.size(), c.windows.windows.size());
    for (size_t w = 0; w < c.windows.windows.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      const RowWindow& pw = p.windows.windows[w];
      const RowWindow& cw = c.windows.windows[w];
      EXPECT_EQ(pw.first_row, cw.first_row);
      EXPECT_EQ(pw.num_rows, cw.num_rows);
      EXPECT_EQ(pw.nnz, cw.nnz);
      EXPECT_EQ(pw.max_row_nnz, cw.max_row_nnz);
      EXPECT_EQ(pw.unique_cols, cw.unique_cols);
      EXPECT_EQ(pw.col_span, cw.col_span);
      EXPECT_EQ(pw.matrix_cols, cw.matrix_cols);
    }
    EXPECT_EQ(p.assignment, c.assignment);
    EXPECT_EQ(p.windows_cuda, c.windows_cuda);
    EXPECT_EQ(p.windows_tensor, c.windows_tensor);

    // Only dirty windows were rebuilt (the point of incremental maintenance).
    EXPECT_GT(patch.ValueOrDie().dirty_windows, 0);
    EXPECT_LT(patch.ValueOrDie().dirty_windows, patch.ValueOrDie().total_windows);

    if (packed) {
      ASSERT_NE(p.packed, nullptr);
      ASSERT_NE(c.packed, nullptr);
      EXPECT_TRUE(patch.ValueOrDie().repacked);
      EXPECT_EQ(p.packed->stream(), c.packed->stream());
      EXPECT_EQ(p.packed->pack_ptr(), c.packed->pack_ptr());
    } else {
      EXPECT_EQ(p.packed, nullptr);
      EXPECT_FALSE(patch.ValueOrDie().repacked);
    }
  }
}

TEST(PlanPatchTest, PackedPatchRowsByteIdenticalToFullEncode) {
  const CsrMatrix base = StreamMatrix(9, 120, 0.08);
  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(31);
  const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 25, &rng);
  auto patched_csr = ApplyDeltasToCsr(base, batch);
  ASSERT_TRUE(patched_csr.ok());
  const CsrMatrix& patched = patched_csr.ValueOrDie();

  auto base_packed = PackedCsr::Encode(base);
  ASSERT_TRUE(base_packed.ok());
  auto spliced =
      PackedCsr::PatchRows(base_packed.ValueOrDie(), patched, batch.DirtyRows());
  ASSERT_TRUE(spliced.ok()) << spliced.status().message();
  auto full = PackedCsr::Encode(patched);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(spliced.ValueOrDie().stream(), full.ValueOrDie().stream());
  EXPECT_EQ(spliced.ValueOrDie().pack_ptr(), full.ValueOrDie().pack_ptr());
}

// ---------------------------------------------------------------------------
// Session::ApplyDeltas

TEST(SessionStreamTest, BitIdenticalToColdRebuildAcrossSimdThreadsPacked) {
  const CsrMatrix base = StreamMatrix(13, 240, 0.05);
  Pcg32 x_rng(1);
  const DenseMatrix x = GenerateDense(base.cols(), 12, &x_rng);

  for (const bool packed : {false, true}) {
    for (const int threads : {1, 4}) {
      for (const SimdLevel level : {SimdLevel::kScalar, ActiveSimdLevel()}) {
        SCOPED_TRACE(std::string(packed ? "packed" : "plain") + " threads=" +
                     std::to_string(threads) + " simd=" + SimdLevelName(level));
        const SimdLevel prev = SetActiveSimdLevel(level);
        const SessionOptions options =
            SessionOptions(Fp32(threads)).set_compress_indices(packed);
        CsrMatrix abar = base;
        auto session = Runtime::Default()->OpenSession(&abar, options);
        ASSERT_TRUE(session->WaitReady().ok());

        EdgeMap map = ToEdgeMap(base);
        Pcg32 rng(41);
        uint64_t expect_fp = session->content_fingerprint();
        for (int b = 0; b < 3; ++b) {
          const DeltaBatch batch =
              RandomBatch(map, base.rows(), base.cols(), 30, &rng);
          DeltaApplyStats stats;
          ASSERT_TRUE(session->ApplyDeltas(batch, &stats).ok());
          ApplyToMap(&map, batch);
          expect_fp = FoldFingerprint(expect_fp, batch.Hash());
          EXPECT_EQ(stats.version, static_cast<uint64_t>(b + 1));
          EXPECT_GT(stats.dirty_windows, 0);
          EXPECT_LE(stats.dirty_windows, stats.total_windows);
          EXPECT_EQ(stats.repacked, packed);
        }
        EXPECT_EQ(session->version(), 3u);
        EXPECT_EQ(session->content_fingerprint(), expect_fp);

        const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
        auto cold = Runtime::Default()->OpenSession(&rebuilt, options);
        ASSERT_TRUE(cold->WaitReady().ok());
        DenseMatrix z_streamed, z_cold;
        ASSERT_TRUE(session->Multiply(x, &z_streamed, nullptr).ok());
        ASSERT_TRUE(cold->Multiply(x, &z_cold, nullptr).ok());
        EXPECT_TRUE(BitIdentical(z_streamed, z_cold));
        EXPECT_EQ(z_streamed.MaxAbsDifference(ReferenceSpmm(rebuilt, x)), 0.0);
        SetActiveSimdLevel(prev);
      }
    }
  }
}

TEST(SessionStreamTest, PatchedPlanJoinsThePlanCacheUnderFoldedFingerprint) {
  Runtime runtime;  // isolated cache
  const CsrMatrix base = StreamMatrix(15);
  auto session = runtime.OpenSession(&base, Fp32());
  ASSERT_TRUE(session->WaitReady().ok());
  const int64_t cold_insertions = runtime.plan_cache_stats().insertions;

  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(43);
  const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 20, &rng);
  ASSERT_TRUE(session->ApplyDeltas(batch).ok());
  // The patched plan was inserted under the folded fingerprint; the old
  // plan's entry is untouched, so both snapshots stay cached.
  EXPECT_EQ(runtime.plan_cache_stats().insertions, cold_insertions + 1);

  // A second session on the same base hits version 0's entry even though
  // the first session has moved on.
  auto again = runtime.OpenSession(&base, Fp32());
  ASSERT_TRUE(again->WaitReady().ok());
  EXPECT_TRUE(again->plan_from_cache());
}

TEST(SessionStreamTest, ErrorsLeaveTheSessionUntouched) {
  const CsrMatrix base = StreamMatrix(19);
  auto session = Runtime::Default()->OpenSession(&base, Fp32());
  ASSERT_TRUE(session->WaitReady().ok());
  Pcg32 x_rng(2);
  const DenseMatrix x = GenerateDense(base.cols(), 8, &x_rng);
  DenseMatrix z_before;
  ASSERT_TRUE(session->Multiply(x, &z_before, nullptr).ok());
  const uint64_t fp_before = session->content_fingerprint();

  // Deleting an absent edge fails...
  EdgeMap map = ToEdgeMap(base);
  int32_t hole = -1;
  for (int32_t c = 0; c < base.cols(); ++c) {
    if (map.find({0, c}) == map.end()) {
      hole = c;
      break;
    }
  }
  ASSERT_GE(hole, 0);
  const DeltaBatch absent = DeltaBatch::Make({}, {{0, hole, 0.0f}}).ValueOrDie();
  EXPECT_FALSE(session->ApplyDeltas(absent).ok());
  // ...as does an out-of-bounds batch...
  const DeltaBatch oob =
      DeltaBatch::Make({{base.rows(), 0, 1.0f}}, {}).ValueOrDie();
  EXPECT_FALSE(session->ApplyDeltas(oob).ok());
  // ...and nothing was published either time.
  EXPECT_EQ(session->version(), 0u);
  EXPECT_EQ(session->content_fingerprint(), fp_before);
  DenseMatrix z_after;
  ASSERT_TRUE(session->Multiply(x, &z_after, nullptr).ok());
  EXPECT_TRUE(BitIdentical(z_before, z_after));

  // Non-hcspmm kernels have no incremental plan to patch.
  auto baseline = Runtime::Default()->OpenSession(
      &base, SessionOptions(Fp32()).set_kernel("tcgnn"));
  ASSERT_TRUE(baseline->WaitReady().ok());
  const DeltaBatch ins = DeltaBatch::Make({{0, 0, 1.0f}}, {}).ValueOrDie();
  EXPECT_FALSE(baseline->ApplyDeltas(ins).ok());
}

TEST(SessionStreamTest, InFlightMultiplyFinishesOnItsSubmissionSnapshot) {
  // The version-pinning race: a multiply queued (but not yet running) on
  // version N must produce version N's result even though ApplyDeltas
  // publishes N+1 before the task runs; a multiply submitted after the
  // publish must see N+1. TSan runs this repeatedly in CI.
  const CsrMatrix base = StreamMatrix(23, 240, 0.05);
  Pcg32 x_rng(3);
  const DenseMatrix x = GenerateDense(base.cols(), 10, &x_rng);

  CsrMatrix abar = base;
  auto session = Runtime::Default()->OpenSession(&abar, Fp32());
  ASSERT_TRUE(session->WaitReady().ok());
  DenseMatrix z_v0;
  ASSERT_TRUE(session->Multiply(x, &z_v0, nullptr).ok());

  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(47);
  const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 30, &rng);
  ApplyToMap(&map, batch);
  const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
  DenseMatrix z_v1;
  {
    auto cold = Runtime::Default()->OpenSession(&rebuilt, Fp32());
    ASSERT_TRUE(cold->Multiply(x, &z_v1, nullptr).ok());
  }
  ASSERT_FALSE(BitIdentical(z_v0, z_v1));  // the batch must change the result

  // Plug stream 0 so the next submission stays queued while deltas land.
  std::atomic<bool> release{false};
  Future<bool> gate = session->SubmitAsync(
      [&release]() -> Status {
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        return Status::OK();
      },
      /*stream=*/0);
  Future<DenseMatrix> pinned_v0 = session->MultiplyAsync(x, nullptr, /*stream=*/0);

  ASSERT_TRUE(session->ApplyDeltas(batch).ok());  // publishes version 1
  Future<DenseMatrix> sees_v1 = session->MultiplyAsync(x, nullptr, /*stream=*/1);

  release.store(true, std::memory_order_release);
  ASSERT_TRUE(gate.status().ok());
  ASSERT_TRUE(pinned_v0.status().ok());
  ASSERT_TRUE(sees_v1.status().ok());
  EXPECT_TRUE(BitIdentical(pinned_v0.Get(), z_v0));
  EXPECT_TRUE(BitIdentical(sees_v1.Get(), z_v1));

  // Explicitly pinned snapshots survive later deltas too.
  auto v1_snapshot = session->CurrentVersion();
  const DeltaBatch more = RandomBatch(map, base.rows(), base.cols(), 20, &rng);
  ASSERT_TRUE(session->ApplyDeltas(more).ok());
  DenseMatrix z_pinned;
  ASSERT_TRUE(session->MultiplyOn(*v1_snapshot, x, &z_pinned, nullptr).ok());
  EXPECT_TRUE(BitIdentical(z_pinned, z_v1));
}

TEST(SessionStreamTest, RandomizedSoakMatchesFromScratchRebuilds) {
  // 500 deltas in 20 batches with a fixed printed seed; every 5 batches the
  // streamed session is compared bitwise against a cold session on a CSR
  // reconstructed from an independently maintained edge map.
  constexpr uint64_t kSoakSeed = 20260808;
  constexpr int kBatches = 20;
  constexpr int kDeltasPerBatch = 25;
  constexpr int kCheckEvery = 5;
  SCOPED_TRACE("soak seed=" + std::to_string(kSoakSeed));

  const CsrMatrix base = StreamMatrix(kSoakSeed, 320, 0.04);
  Pcg32 x_rng(4);
  const DenseMatrix x = GenerateDense(base.cols(), 16, &x_rng);
  const SessionOptions options =
      SessionOptions(Fp32(2)).set_compress_indices(true);
  CsrMatrix abar = base;
  auto session = Runtime::Default()->OpenSession(&abar, options);
  ASSERT_TRUE(session->WaitReady().ok());

  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(kSoakSeed);
  for (int b = 1; b <= kBatches; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const DeltaBatch batch =
        RandomBatch(map, base.rows(), base.cols(), kDeltasPerBatch, &rng);
    ASSERT_TRUE(session->ApplyDeltas(batch).ok());
    ApplyToMap(&map, batch);
    if (b % kCheckEvery != 0) continue;
    const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
    auto cold = Runtime::Default()->OpenSession(&rebuilt, options);
    DenseMatrix z_streamed, z_cold, z_scalar;
    ASSERT_TRUE(session->Multiply(x, &z_streamed, nullptr).ok());
    ASSERT_TRUE(cold->Multiply(x, &z_cold, nullptr).ok());
    EXPECT_TRUE(BitIdentical(z_streamed, z_cold));
    const SimdLevel prev = SetActiveSimdLevel(SimdLevel::kScalar);
    ASSERT_TRUE(session->Multiply(x, &z_scalar, nullptr).ok());
    SetActiveSimdLevel(prev);
    EXPECT_TRUE(BitIdentical(z_streamed, z_scalar));
  }
  EXPECT_EQ(session->version(), static_cast<uint64_t>(kBatches));
}

// ---------------------------------------------------------------------------
// ShardedSession::ApplyDeltas

TEST(ShardedStreamTest, BitIdenticalToUnshardedColdRebuildForEveryK) {
  const CsrMatrix base = StreamMatrix(29, 320, 0.05);
  Pcg32 x_rng(5);
  const DenseMatrix x = GenerateDense(base.cols(), 12, &x_rng);

  for (const int k : {1, 2, 4, 7}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    ShardingOptions sharding;
    sharding.num_shards = k;
    auto sharded =
        ShardedSession::Open(Runtime::Default(), base, Fp32(), sharding);
    ASSERT_TRUE(sharded->WaitReady().ok());
    EXPECT_EQ(sharded->generation(), 0u);

    EdgeMap map = ToEdgeMap(base);
    Pcg32 rng(53 + static_cast<uint64_t>(k));
    for (int b = 0; b < 3; ++b) {
      const DeltaBatch batch =
          RandomBatch(map, base.rows(), base.cols(), 40, &rng);
      DeltaApplyStats stats;
      ASSERT_TRUE(sharded->ApplyDeltas(batch, &stats).ok());
      ApplyToMap(&map, batch);
      EXPECT_EQ(stats.version, static_cast<uint64_t>(b + 1));
    }
    EXPECT_EQ(sharded->generation(), 3u);

    const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
    auto cold = Runtime::Default()->OpenSession(&rebuilt, Fp32());
    DenseMatrix z_sharded, z_cold;
    ASSERT_TRUE(sharded->Multiply(x, &z_sharded, nullptr).ok());
    ASSERT_TRUE(cold->Multiply(x, &z_cold, nullptr).ok());
    EXPECT_TRUE(BitIdentical(z_sharded, z_cold));

    // Async fan-outs pin one cross-shard state.
    Future<DenseMatrix> fut = sharded->MultiplyAsync(x);
    ASSERT_TRUE(fut.status().ok());
    EXPECT_TRUE(BitIdentical(fut.Get(), z_cold));
  }
}

TEST(ShardedStreamTest, SkewedChurnTriggersRepartitioning) {
  const CsrMatrix base = StreamMatrix(31, 320, 0.05);
  Pcg32 x_rng(6);
  const DenseMatrix x = GenerateDense(base.cols(), 8, &x_rng);

  ShardingOptions tight;
  tight.num_shards = 4;
  tight.rebalance_threshold = 1.05;  // repartition on mild imbalance
  auto sharded = ShardedSession::Open(Runtime::Default(), base, Fp32(), tight);
  ASSERT_TRUE(sharded->WaitReady().ok());

  // Pile inserts into the last shard's rows until the nnz balance drifts.
  EdgeMap map = ToEdgeMap(base);
  const int32_t row_begin = sharded->shard_range(3).row_begin;
  std::vector<EdgeDelta> ups;
  Pcg32 rng(59);
  std::map<std::pair<int32_t, int32_t>, int> used;
  while (static_cast<int>(ups.size()) < 300) {
    const int32_t r = row_begin + static_cast<int32_t>(rng.NextBounded(
                                      static_cast<uint32_t>(base.rows() - row_begin)));
    const int32_t c = static_cast<int32_t>(rng.NextBounded(base.cols()));
    if (map.count({r, c}) != 0 || !used.emplace(std::make_pair(r, c), 1).second) {
      continue;
    }
    ups.push_back({r, c, 1.0f});
  }
  const DeltaBatch skew = DeltaBatch::Make(std::move(ups), {}).ValueOrDie();
  DeltaApplyStats stats;
  ASSERT_TRUE(sharded->ApplyDeltas(skew, &stats).ok());
  ApplyToMap(&map, skew);
  EXPECT_TRUE(stats.repartitioned);
  EXPECT_EQ(sharded->generation(), 1u);

  // Rebalanced shards still tile [0, rows) and compute the same product.
  int32_t expected_begin = 0;
  for (int i = 0; i < sharded->num_shards(); ++i) {
    EXPECT_EQ(sharded->shard_range(i).row_begin, expected_begin);
    expected_begin = sharded->shard_range(i).row_end;
  }
  EXPECT_EQ(expected_begin, base.rows());
  const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
  auto cold = Runtime::Default()->OpenSession(&rebuilt, Fp32());
  DenseMatrix z_sharded, z_cold;
  ASSERT_TRUE(sharded->Multiply(x, &z_sharded, nullptr).ok());
  ASSERT_TRUE(cold->Multiply(x, &z_cold, nullptr).ok());
  EXPECT_TRUE(BitIdentical(z_sharded, z_cold));

  // An effectively-infinite threshold never repartitions.
  ShardingOptions loose;
  loose.num_shards = 4;
  loose.rebalance_threshold = 1e9;
  auto stable = ShardedSession::Open(Runtime::Default(), base, Fp32(), loose);
  ASSERT_TRUE(stable->WaitReady().ok());
  DeltaApplyStats loose_stats;
  ASSERT_TRUE(stable->ApplyDeltas(skew, &loose_stats).ok());
  EXPECT_FALSE(loose_stats.repartitioned);
  DenseMatrix z_stable;
  ASSERT_TRUE(stable->Multiply(x, &z_stable, nullptr).ok());
  EXPECT_TRUE(BitIdentical(z_stable, z_cold));
}

TEST(ShardedStreamTest, InapplicableBatchLeavesEveryShardUntouched) {
  const CsrMatrix base = StreamMatrix(37, 160, 0.05);
  ShardingOptions sharding;
  sharding.num_shards = 3;
  auto sharded = ShardedSession::Open(Runtime::Default(), base, Fp32(), sharding);
  ASSERT_TRUE(sharded->WaitReady().ok());
  Pcg32 x_rng(7);
  const DenseMatrix x = GenerateDense(base.cols(), 8, &x_rng);
  DenseMatrix z_before;
  ASSERT_TRUE(sharded->Multiply(x, &z_before, nullptr).ok());

  // One valid upsert in shard 0 plus one delete-of-absent in the last shard:
  // cross-shard pre-validation must reject the whole batch atomically (no
  // shard applies its slice).
  EdgeMap map = ToEdgeMap(base);
  const int32_t last_row = base.rows() - 1;
  int32_t hole = -1;
  for (int32_t c = 0; c < base.cols(); ++c) {
    if (map.find({last_row, c}) == map.end()) {
      hole = c;
      break;
    }
  }
  ASSERT_GE(hole, 0);
  const DeltaBatch bad =
      DeltaBatch::Make({{0, 0, 9.0f}}, {{last_row, hole, 0.0f}}).ValueOrDie();
  EXPECT_FALSE(sharded->ApplyDeltas(bad).ok());
  EXPECT_EQ(sharded->generation(), 0u);
  DenseMatrix z_after;
  ASSERT_TRUE(sharded->Multiply(x, &z_after, nullptr).ok());
  EXPECT_TRUE(BitIdentical(z_before, z_after));
}

// ---------------------------------------------------------------------------
// SessionPool + Server streaming admission

TEST(PoolStreamTest, ApplyDeltasRekeysResidentAndNonResidentEntries) {
  Runtime rt;
  SessionPoolOptions opts;
  opts.max_sessions = 4;
  opts.session = Fp32();
  SessionPool pool(&rt, opts);

  const CsrMatrix base = StreamMatrix(41, 200, 0.05);
  Pcg32 x_rng(8);
  const DenseMatrix x = GenerateDense(base.cols(), 8, &x_rng);
  EdgeMap map = ToEdgeMap(base);
  Pcg32 rng(61);
  const DeltaBatch batch = RandomBatch(map, base.rows(), base.cols(), 30, &rng);
  ApplyToMap(&map, batch);
  const CsrMatrix rebuilt = FromEdgeMap(map, base.rows(), base.cols());
  DenseMatrix z_expect;
  {
    auto direct = rt.OpenSession(&rebuilt, Fp32());
    ASSERT_TRUE(direct->Multiply(x, &z_expect, nullptr).ok());
  }

  // Resident path: the open session is patched in place.
  {
    CsrMatrix copy = base;
    const uint64_t handle = pool.RegisterGraph(std::move(copy));
    auto acquired = pool.Acquire(handle);
    ASSERT_TRUE(acquired.ok());
    ASSERT_TRUE(acquired.ValueOrDie().WaitReady().ok());
    DeltaApplyStats stats;
    auto rekeyed = pool.ApplyDeltas(handle, batch, &stats);
    ASSERT_TRUE(rekeyed.ok()) << rekeyed.status().message();
    const uint64_t new_handle = rekeyed.ValueOrDie();
    EXPECT_EQ(new_handle, FoldFingerprint(handle, batch.Hash()));
    EXPECT_FALSE(pool.HasGraph(handle));  // old handle forgotten
    ASSERT_TRUE(pool.HasGraph(new_handle));
    EXPECT_EQ(stats.version, 1u);

    auto again = pool.Acquire(new_handle);
    ASSERT_TRUE(again.ok());
    DenseMatrix z;
    ASSERT_TRUE(again.ValueOrDie().ref().Multiply(x, &z, nullptr).ok());
    EXPECT_TRUE(BitIdentical(z, z_expect));
    ASSERT_TRUE(pool.Unregister(new_handle).ok());
  }

  // Non-resident path: only the stored CSR is patched; the session opened
  // later builds on the patched content.
  {
    CsrMatrix copy = base;
    const uint64_t handle = pool.RegisterGraph(std::move(copy));
    auto rekeyed = pool.ApplyDeltas(handle, batch);
    ASSERT_TRUE(rekeyed.ok());
    auto acquired = pool.Acquire(rekeyed.ValueOrDie());
    ASSERT_TRUE(acquired.ok());
    DenseMatrix z;
    ASSERT_TRUE(acquired.ValueOrDie().ref().Multiply(x, &z, nullptr).ok());
    EXPECT_TRUE(BitIdentical(z, z_expect));
  }

  // Unknown handles fail without side effects.
  EXPECT_EQ(pool.ApplyDeltas(0xdeadbeef, batch).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.Unregister(0xdeadbeef).code(), StatusCode::kInvalidArgument);
}

TEST(ServerStreamTest, StreamingAdmissionRefusedWhileRequestsAreQueued) {
  Runtime rt;
  ServerOptions opts;
  opts.pool.max_sessions = 2;
  opts.pool.session = Fp32();
  opts.max_batch = 64;
  opts.batch_window_us = 60'000'000;  // nothing dispatches until Shutdown
  Server server(&rt, opts);

  CsrMatrix base = StreamMatrix(43, 200, 0.05);
  const CsrMatrix kept = base;
  const uint64_t handle = server.RegisterGraph(std::move(base));
  Pcg32 x_rng(9);
  const DenseMatrix x = GenerateDense(kept.cols(), 8, &x_rng);

  InferRequest req;
  req.tenant = "t";
  req.graph = handle;
  req.x = x;
  Future<DenseMatrix> fut = server.Submit(std::move(req));
  // status() would block until the batch window drains; the request must
  // still be queued when the mutations below probe the server.
  ASSERT_TRUE(fut.valid());
  ASSERT_FALSE(fut.ready());

  EdgeMap map = ToEdgeMap(kept);
  Pcg32 rng(67);
  const DeltaBatch batch = RandomBatch(map, kept.rows(), kept.cols(), 20, &rng);

  // Queued request => both mutations refuse with the retryable code, and
  // the handle still answers.
  EXPECT_EQ(server.RegisterGraph(handle, batch).status().code(),
            StatusCode::kOverloaded);
  EXPECT_EQ(server.UnregisterGraph(handle).code(), StatusCode::kOverloaded);
  EXPECT_TRUE(server.pool()->HasGraph(handle));

  server.Shutdown();  // drains the queue; the future resolves
  ASSERT_TRUE(fut.status().ok());
  EXPECT_EQ(fut.Get().rows(), kept.rows());

  // Drained: unregister now succeeds (streaming admission is refused after
  // Shutdown instead, like Submit).
  EXPECT_EQ(server.RegisterGraph(handle, batch).status().code(),
            StatusCode::kInternal);
  EXPECT_TRUE(server.UnregisterGraph(handle).ok());
  EXPECT_FALSE(server.pool()->HasGraph(handle));
}

TEST(ServerStreamTest, StreamingAdmissionPatchesAndServesTheNewHandle) {
  Runtime rt;
  ServerOptions opts;
  opts.pool.max_sessions = 2;
  opts.pool.session = Fp32();
  opts.max_batch = 4;
  opts.batch_window_us = 0;
  Server server(&rt, opts);

  CsrMatrix base = StreamMatrix(47, 200, 0.05);
  const CsrMatrix kept = base;
  const uint64_t handle = server.RegisterGraph(std::move(base));
  Pcg32 x_rng(10);
  const DenseMatrix x = GenerateDense(kept.cols(), 8, &x_rng);

  // Serve one request and let it complete so nothing is queued or in flight.
  {
    InferRequest req;
    req.tenant = "t";
    req.graph = handle;
    req.x = x;
    Future<DenseMatrix> fut = server.Submit(std::move(req));
    ASSERT_TRUE(fut.status().ok());
    (void)fut.Get();
  }

  EdgeMap map = ToEdgeMap(kept);
  Pcg32 rng(71);
  const DeltaBatch batch = RandomBatch(map, kept.rows(), kept.cols(), 25, &rng);
  DeltaApplyStats stats;
  auto rekeyed = server.RegisterGraph(handle, batch, &stats);
  ASSERT_TRUE(rekeyed.ok()) << rekeyed.status().message();
  const uint64_t new_handle = rekeyed.ValueOrDie();
  EXPECT_EQ(new_handle, FoldFingerprint(handle, batch.Hash()));

  // The old handle is gone; the new one serves the patched product.
  {
    InferRequest req;
    req.tenant = "t";
    req.graph = handle;
    req.x = x;
    EXPECT_EQ(server.Submit(std::move(req)).status().code(),
              StatusCode::kInvalidArgument);
  }
  ApplyToMap(&map, batch);
  const CsrMatrix rebuilt = FromEdgeMap(map, kept.rows(), kept.cols());
  DenseMatrix z_expect;
  {
    auto direct = rt.OpenSession(&rebuilt, Fp32());
    ASSERT_TRUE(direct->Multiply(x, &z_expect, nullptr).ok());
  }
  InferRequest req;
  req.tenant = "t";
  req.graph = new_handle;
  req.x = x;
  Future<DenseMatrix> fut = server.Submit(std::move(req));
  ASSERT_TRUE(fut.status().ok());
  EXPECT_TRUE(BitIdentical(fut.Get(), z_expect));

  server.Shutdown();
  EXPECT_TRUE(server.UnregisterGraph(new_handle).ok());
}

}  // namespace
}  // namespace hcspmm
