#include <gtest/gtest.h>

#include <cmath>

#include "ml/logistic_regression.h"
#include "ml/training_pipeline.h"
#include "util/random.h"

namespace hcspmm {
namespace {

std::vector<LrSample> LinearlySeparable(int n, Pcg32* rng) {
  // Label 1 iff x1 + 0.5 x2 > 1.
  std::vector<LrSample> out;
  for (int i = 0; i < n; ++i) {
    LrSample s;
    s.x1 = rng->NextDouble(0.0, 2.0);
    s.x2 = rng->NextDouble(0.0, 2.0);
    s.label = (s.x1 + 0.5 * s.x2 > 1.0) ? 1 : 0;
    out.push_back(s);
  }
  return out;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Pcg32 rng(1);
  auto samples = LinearlySeparable(500, &rng);
  LogisticRegression lr;
  double acc = lr.Train(samples);
  EXPECT_GT(acc, 0.97);
}

TEST(LogisticRegressionTest, GeneralizesToHeldOut) {
  Pcg32 rng(2);
  auto train = LinearlySeparable(500, &rng);
  auto test = LinearlySeparable(200, &rng);
  LogisticRegression lr;
  lr.Train(train);
  EXPECT_GT(lr.Accuracy(test), 0.95);
}

TEST(LogisticRegressionTest, HandlesUnscaledFeatures) {
  // x2 in the hundreds (like raw column counts): standardization inside
  // Train must still converge and fold back into raw coefficients.
  Pcg32 rng(3);
  std::vector<LrSample> samples;
  for (int i = 0; i < 400; ++i) {
    LrSample s;
    s.x1 = rng.NextDouble(0.0, 1.0);
    s.x2 = rng.NextDouble(0.0, 300.0);
    s.label = (10.0 * s.x1 - 0.05 * s.x2 > 2.0) ? 1 : 0;
    samples.push_back(s);
  }
  LogisticRegression lr;
  EXPECT_GT(lr.Train(samples), 0.93);
}

TEST(LogisticRegressionTest, PredictProbMonotoneInFeatures) {
  LogisticRegression lr;
  lr.SetCoefficients(2.0, -1.0, 0.0);
  EXPECT_GT(lr.PredictProb(1.0, 0.0), lr.PredictProb(0.0, 0.0));
  EXPECT_LT(lr.PredictProb(0.0, 1.0), lr.PredictProb(0.0, 0.0));
}

TEST(LogisticRegressionTest, CoefficientsRoundTrip) {
  LogisticRegression lr;
  lr.SetCoefficients(1.5, -0.25, 0.75);
  EXPECT_DOUBLE_EQ(lr.w1(), 1.5);
  EXPECT_DOUBLE_EQ(lr.w2(), -0.25);
  EXPECT_DOUBLE_EQ(lr.bias(), 0.75);
  EXPECT_NEAR(lr.PredictProb(0.0, 3.0), 1.0 / (1.0 + std::exp(0.0)), 1e-12);
}

TEST(TrainingPipelineTest, AccuracyAbovePaperThreshold) {
  // SS IV-C: "accuracy greater than 90%" — needs the full column sweep.
  SelectorTrainConfig cfg;
  auto result = TrainCoreSelector(Rtx3090(), cfg);
  EXPECT_GT(result.accuracy, 0.90);
  EXPECT_GT(result.num_samples, 200);
}

TEST(TrainingPipelineTest, BothLabelsPresent) {
  SelectorTrainConfig cfg;
  cfg.col_step = 6;
  auto result = TrainCoreSelector(Rtx3090(), cfg);
  EXPECT_GT(result.cuda_labeled, 0);
  EXPECT_LT(result.cuda_labeled, result.num_samples);
}

TEST(TrainingPipelineTest, TrainedModelAgreesWithEncodedDefault) {
  // The shipped DefaultSelectorModel must make the same decisions as a
  // freshly trained model on the vast majority of windows.
  SelectorTrainConfig cfg;
  cfg.col_step = 6;
  auto result = TrainCoreSelector(Rtx3090(), cfg);
  const SelectorModel fresh = result.model;
  const SelectorModel shipped = DefaultSelectorModel();
  int agree = 0, total = 0;
  for (const LrSample& s : result.samples) {
    ++total;
    agree += (fresh.Select(s.x1, s.x2) == shipped.Select(s.x1, s.x2));
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST(TrainingPipelineTest, DeterministicForSeed) {
  SelectorTrainConfig cfg;
  cfg.col_step = 13;
  auto a = TrainCoreSelector(Rtx3090(), cfg);
  auto b = TrainCoreSelector(Rtx3090(), cfg);
  EXPECT_DOUBLE_EQ(a.model.w_sparsity, b.model.w_sparsity);
  EXPECT_DOUBLE_EQ(a.model.w_cols, b.model.w_cols);
  EXPECT_DOUBLE_EQ(a.model.bias, b.model.bias);
}

TEST(TrainingPipelineTest, SparsityFeatureDominates) {
  // The learned boundary is primarily a sparsity threshold (Fig. 1a):
  // the sparsity weight moves the logit far more over its feature range
  // than the column weight does over the clamped column range.
  SelectorTrainConfig cfg;
  cfg.col_step = 6;
  auto result = TrainCoreSelector(Rtx3090(), cfg);
  EXPECT_GT(std::abs(result.model.w_sparsity) * 1.0,
            std::abs(result.model.w_cols) * 130.0);
  EXPECT_GT(result.model.w_sparsity, 0.0);  // sparser -> CUDA
}

}  // namespace
}  // namespace hcspmm
