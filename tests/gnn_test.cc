#include <gtest/gtest.h>

#include <cmath>

#include "gnn/dense_ops.h"
#include "gnn/fused.h"
#include "gnn/gcn.h"
#include "gnn/gin.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "sparse/generate.h"
#include "sparse/reference.h"
#include "util/random.h"

namespace hcspmm {
namespace {

Graph TestGraph(int n = 200, uint64_t seed = 11) {
  Pcg32 rng(seed);
  Graph g = MoleculeUnion(n, n * 4, 20, 12, &rng);
  g.num_classes = 4;
  // Community-aligned labels: aggregation then reinforces (rather than
  // averages away) the class signal, so GCN/GIN can actually learn.
  for (int32_t v = 0; v < g.num_vertices; ++v) g.labels[v] = (v / 20) % 4;
  AttachSyntheticFeatures(&g, &rng);
  return g;
}

TEST(DenseOpsTest, SoftmaxRowsSumToOne) {
  Pcg32 rng(1);
  DenseMatrix logits = GenerateDense(10, 5, &rng);
  DenseMatrix p = SoftmaxRows(logits);
  for (int32_t r = 0; r < 10; ++r) {
    double sum = 0;
    for (int32_t c = 0; c < 5; ++c) {
      sum += p.At(r, c);
      EXPECT_GE(p.At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(DenseOpsTest, CrossEntropyOfPerfectPredictionIsSmall) {
  DenseMatrix logits(2, 3);
  logits.At(0, 1) = 20.0f;
  logits.At(1, 2) = 20.0f;
  const double loss = SoftmaxCrossEntropy(logits, {1, 2}, nullptr);
  EXPECT_LT(loss, 1e-6);
}

TEST(DenseOpsTest, CrossEntropyGradientMatchesFiniteDifference) {
  Pcg32 rng(2);
  DenseMatrix logits = GenerateDense(6, 4, &rng);
  std::vector<int32_t> labels{0, 1, 2, 3, 1, 2};
  DenseMatrix grad;
  SoftmaxCrossEntropy(logits, labels, &grad);
  const double eps = 1e-3;
  for (int32_t r = 0; r < 3; ++r) {
    for (int32_t c = 0; c < 4; ++c) {
      DenseMatrix lp = logits, lm = logits;
      lp.At(r, c) += eps;
      lm.At(r, c) -= eps;
      const double fd = (SoftmaxCrossEntropy(lp, labels, nullptr) -
                         SoftmaxCrossEntropy(lm, labels, nullptr)) /
                        (2 * eps);
      EXPECT_NEAR(grad.At(r, c), fd, 1e-4);
    }
  }
}

TEST(DenseOpsTest, ReluAndGrad) {
  DenseMatrix m(1, 4);
  m.At(0, 0) = -1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 0;
  m.At(0, 3) = -0.5;
  DenseMatrix pre = m;
  KernelProfile prof;
  MeteredReluInPlace(&m, Rtx3090(), &prof);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2);
  EXPECT_EQ(prof.launches, 1);

  DenseMatrix gout(1, 4, 1.0f);
  DenseMatrix gin = MeteredReluGrad(gout, pre, Rtx3090(), &prof);
  EXPECT_FLOAT_EQ(gin.At(0, 0), 0);
  EXPECT_FLOAT_EQ(gin.At(0, 1), 1);
  EXPECT_FLOAT_EQ(gin.At(0, 2), 0);  // relu'(0) = 0
}

TEST(DenseOpsTest, MeteredGemmMatchesReferenceAndMeters) {
  Pcg32 rng(3);
  DenseMatrix a = GenerateDense(20, 12, &rng);
  DenseMatrix b = GenerateDense(12, 8, &rng);
  KernelProfile prof;
  DenseMatrix c = MeteredGemm(a, b, Rtx3090(), DataType::kTf32, &prof);
  EXPECT_LT(c.MaxAbsDifference(ReferenceGemm(a, b)), 1e-4);
  EXPECT_GT(prof.time_ns, 0);
  EXPECT_GT(prof.mma_ops, 0);
  EXPECT_EQ(prof.launches, 1);
}

TEST(DenseOpsTest, PredictionAccuracy) {
  DenseMatrix logits(2, 2);
  logits.At(0, 0) = 1;
  logits.At(1, 1) = 1;
  EXPECT_DOUBLE_EQ(PredictionAccuracy(logits, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(PredictionAccuracy(logits, {1, 0}), 0.0);
}

TEST(DenseOpsTest, SgdStepMovesAgainstGradient) {
  DenseMatrix w(1, 2, 1.0f);
  DenseMatrix g(1, 2, 0.5f);
  SgdStep(&w, g, 0.1);
  EXPECT_FLOAT_EQ(w.At(0, 0), 0.95f);
}

TEST(FusionTest, SavingsArePositiveAndScaleWithRows) {
  const DeviceSpec dev = Rtx3090();
  const double s1 = FusionSavingsNs(1000, 16, 1, dev, DataType::kTf32);
  const double s2 = FusionSavingsNs(100000, 16, 1, dev, DataType::kTf32);
  EXPECT_GT(s1, dev.kernel_launch_ns);  // at least the launch
  EXPECT_GT(s2, s1);
}

TEST(FusionTest, ApplyFusionNeverGoesNegative) {
  KernelProfile p;
  p.launches = 2;
  p.launch_ns = 60000;
  p.time_ns = 10;
  ApplyFusion(&p, 1 << 20, 128, 5, Rtx3090(), DataType::kTf32);
  EXPECT_GE(p.time_ns, 0.0);
  EXPECT_GE(p.launch_ns, 0.0);
  EXPECT_GE(p.launches, 1);
}

TEST(GcnTest, ForwardShapesAndDeterminism) {
  Graph g = TestGraph();
  CsrMatrix abar = GcnNormalized(g.adjacency);
  SpmmEngine engine("hcspmm", &abar, Rtx3090(), DataType::kFp32);
  GnnConfig cfg;
  GcnModel model(&g, cfg, &engine);
  PhaseBreakdown t;
  DenseMatrix logits1 = model.Forward(&t);
  EXPECT_EQ(logits1.rows(), g.num_vertices);
  EXPECT_EQ(logits1.cols(), g.num_classes);
  DenseMatrix logits2 = model.Forward(nullptr);
  EXPECT_EQ(logits1.data(), logits2.data());
  EXPECT_GT(t.agg_ns, 0);
  EXPECT_GT(t.update_ns, 0);
  EXPECT_GT(t.launch_ns, 0);
}

TEST(GcnTest, GcnNormalizationRowsBounded) {
  Graph g = TestGraph(100);
  CsrMatrix abar = GcnNormalized(g.adjacency);
  EXPECT_TRUE(abar.Validate(true));
  // Every weight is 1/sqrt(d_i d_j) in (0, 1]; a row's sum is bounded by
  // sqrt(d_i + 1) (Cauchy-Schwarz on the normalized row).
  for (int32_t r = 0; r < abar.rows(); ++r) {
    double sum = 0;
    for (int64_t k = abar.RowBegin(r); k < abar.RowEnd(r); ++k) {
      EXPECT_GT(abar.val()[k], 0.0f);
      EXPECT_LE(abar.val()[k], 1.0f);
      sum += abar.val()[k];
    }
    EXPECT_GT(sum, 0.0);
    EXPECT_LE(sum, std::sqrt(static_cast<double>(abar.RowNnz(r))) + 1e-5);
  }
}

TEST(GcnTest, WeightGradientMatchesFiniteDifference) {
  Graph g = TestGraph(60, 21);
  CsrMatrix abar = GcnNormalized(g.adjacency);
  SpmmEngine engine("cuda_opt", &abar, Rtx3090(), DataType::kFp32);
  GnnConfig cfg;
  cfg.hidden_dim = 6;
  cfg.learning_rate = 0.0;  // keep weights frozen during Backward's SGD
  GcnModel model(&g, cfg, &engine);

  // Analytic gradient via a probe: re-run backward with lr>0 and compare
  // the SGD delta against finite differences of the loss.
  auto loss_at = [&](GcnModel& m) {
    DenseMatrix logits = m.Forward(nullptr);
    return SoftmaxCrossEntropy(logits, g.labels, nullptr);
  };

  GnnConfig cfg2 = cfg;
  cfg2.learning_rate = 1.0;  // delta = -grad exactly
  GcnModel probe(&g, cfg2, &engine);
  DenseMatrix before = probe.weights()[1];
  DenseMatrix logits = probe.Forward(nullptr);
  DenseMatrix grad;
  SoftmaxCrossEntropy(logits, g.labels, &grad);
  probe.Backward(grad, nullptr);
  DenseMatrix after = probe.weights()[1];

  const double eps = 1e-2;
  for (int32_t r = 0; r < 3; ++r) {
    for (int32_t c = 0; c < 2; ++c) {
      const double analytic = before.At(r, c) - after.At(r, c);  // lr * dW
      // Same seed -> same initial weights as `probe` had before Backward.
      GcnModel m2(&g, cfg, &engine);
      m2.mutable_weights()[1] = before;
      // Perturb.
      m2.mutable_weights()[1].At(r, c) += eps;
      const double lp = loss_at(m2);
      m2.mutable_weights()[1].At(r, c) -= 2 * eps;
      const double lm = loss_at(m2);
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(analytic, fd, 5e-3) << "dW[" << r << "," << c << "]";
    }
  }
}

TEST(GcnTest, LossDecreasesOverTraining) {
  Graph g = TestGraph(300, 31);
  CsrMatrix abar = GcnNormalized(g.adjacency);
  SpmmEngine engine("hcspmm", &abar, Rtx3090(), DataType::kTf32);
  GnnConfig cfg;
  cfg.learning_rate = 0.3;
  GcnModel model(&g, cfg, &engine);
  double first = 0, last = 0;
  for (int e = 0; e < 60; ++e) {
    EpochResult r = model.TrainEpoch();
    if (e == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first * 0.9);
}

TEST(GcnTest, FusionPreservesResultsAndSavesTime) {
  Graph g = TestGraph(400, 41);
  GnnConfig fused, unfused;
  fused.fuse_kernels = true;
  unfused.fuse_kernels = false;
  auto s1 = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", fused, Rtx3090(), 2);
  auto s2 = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", unfused, Rtx3090(), 2);
  EXPECT_NEAR(s1.final_loss, s2.final_loss, 1e-9);  // same math
  EXPECT_LT(s1.AvgBackwardMs(), s2.AvgBackwardMs());
  // Table VI: fusion saves roughly a quarter to a third of backward time.
  const double saving = 1.0 - s1.AvgBackwardMs() / s2.AvgBackwardMs();
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.60);
}

TEST(GinTest, ForwardShapes) {
  Graph g = TestGraph();
  CsrMatrix ahat = GinOperator(g.adjacency);
  SpmmEngine engine("hcspmm", &ahat, Rtx3090(), DataType::kFp32);
  GnnConfig cfg;
  GinModel model(&g, cfg, &engine);
  PhaseBreakdown t;
  DenseMatrix logits = model.Forward(&t);
  EXPECT_EQ(logits.rows(), g.num_vertices);
  EXPECT_EQ(logits.cols(), g.num_classes);
}

TEST(GinTest, GinOperatorAddsSelfLoops) {
  Graph g = TestGraph(50);
  CsrMatrix ahat = GinOperator(g.adjacency, /*eps=*/0.5);
  EXPECT_EQ(ahat.nnz(), g.adjacency.nnz() + 50);
  // Self-loop weight is 1 + eps.
  for (int32_t r = 0; r < 5; ++r) {
    bool found = false;
    for (int64_t k = ahat.RowBegin(r); k < ahat.RowEnd(r); ++k) {
      if (ahat.col_ind()[k] == r) {
        EXPECT_FLOAT_EQ(ahat.val()[k], 1.5f);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(GinTest, LossDecreasesOverTraining) {
  Graph g = TestGraph(300, 51);
  GnnConfig cfg;
  // GIN's unnormalized (A + I) operator amplifies activations by the
  // average degree per layer, so it needs a far smaller step than GCN.
  cfg.learning_rate = 0.005;
  auto stats = TrainGnn(g, GnnModelKind::kGin, "hcspmm", cfg, Rtx3090(), 60);
  EXPECT_LT(stats.epochs.back().loss, stats.epochs.front().loss * 0.95);
}

TEST(GinTest, FusionHelpsForwardMoreThanBackward) {
  // SS V-A/Fig. 13: GIN fuses in forward (Aggregation->Update) but not in
  // backward, so fusion savings land on the forward phase.
  Graph g = TestGraph(400, 61);
  GnnConfig fused, unfused;
  fused.fuse_kernels = true;
  unfused.fuse_kernels = false;
  auto s1 = TrainGnn(g, GnnModelKind::kGin, "hcspmm", fused, Rtx3090(), 2);
  auto s2 = TrainGnn(g, GnnModelKind::kGin, "hcspmm", unfused, Rtx3090(), 2);
  const double fwd_saving = s2.AvgForwardMs() - s1.AvgForwardMs();
  const double bwd_saving = s2.AvgBackwardMs() - s1.AvgBackwardMs();
  EXPECT_GT(fwd_saving, 0.0);
  EXPECT_NEAR(bwd_saving, 0.0, 1e-9);
}

TEST(TrainerTest, StatsAggregation) {
  Graph g = TestGraph(150, 71);
  GnnConfig cfg;
  auto stats = TrainGnn(g, GnnModelKind::kGcn, "gespmm", cfg, Rtx3090(), 3);
  EXPECT_EQ(stats.epochs.size(), 3u);
  EXPECT_GT(stats.AvgForwardMs(), 0.0);
  EXPECT_GT(stats.AvgBackwardMs(), 0.0);
  EXPECT_NEAR(stats.AvgEpochMs(), stats.AvgForwardMs() + stats.AvgBackwardMs(), 1e-12);
  EXPECT_GT(stats.memory_bytes, 0);
}

TEST(TrainerTest, HcSpmmTrainsFasterThanTensorOnlyBaseline) {
  // Fig. 11/12 headline: HC-SpMM beats TC-GNN end to end.
  Graph g = TestGraph(600, 81);
  GnnConfig cfg;
  auto hc = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", cfg, Rtx3090(), 2);
  auto tc = TrainGnn(g, GnnModelKind::kGcn, "tcgnn", cfg, Rtx3090(), 2);
  EXPECT_LT(hc.AvgEpochMs(), tc.AvgEpochMs());
}

TEST(TrainerTest, MemoryUsageOrderingMatchesTableXII) {
  // HC-SpMM uses slightly more memory than GE-SpMM and TC-GNN.
  Graph g = TestGraph(500, 91);
  GnnConfig cfg;
  auto hc = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", cfg, Rtx3090(), 1);
  auto ge = TrainGnn(g, GnnModelKind::kGcn, "gespmm", cfg, Rtx3090(), 1);
  auto tc = TrainGnn(g, GnnModelKind::kGcn, "tcgnn", cfg, Rtx3090(), 1);
  EXPECT_GE(hc.memory_bytes, ge.memory_bytes);
  EXPECT_GE(hc.memory_bytes, tc.memory_bytes);
  EXPECT_LE(tc.memory_bytes, ge.memory_bytes);
  // ... but within a few percent (paper: <= 2% over GE, <= 6% over TC).
  EXPECT_LT(static_cast<double>(hc.memory_bytes) / ge.memory_bytes, 1.10);
}

TEST(TrainerTest, PreprocessingAmortizedAcrossEpochs) {
  Graph g = TestGraph(400, 101);
  GnnConfig cfg;
  auto stats = TrainGnn(g, GnnModelKind::kGcn, "hcspmm", cfg, Rtx3090(), 4);
  // One-time preprocessing must be far below total training time for a
  // multi-epoch run (Appendix F).
  EXPECT_LT(stats.preprocess_ms, stats.AvgEpochMs() * 4);
}

}  // namespace
}  // namespace hcspmm
